module Pool = Utc_parallel.Pool
module Belief = Utc_inference.Belief
module Priors = Utc_inference.Priors
module Forward = Utc_model.Forward
module Mstate = Utc_model.Mstate
module Wallclock = Utc_sim.Wallclock
open Utc_net

type entry = {
  label : string;
  work_items : int;
  serial_seconds : float;
  forced_seconds : float;
  auto_seconds : float;
  engaged : bool;
  reason : string;
  speedup : float;
  forced_speedup : float;
  bit_identical : bool;
}

type report = {
  domains : int;
  recommended_domains : int;
  entries : entry list;
  all_identical : bool;
}

let timed f =
  let start = Wallclock.now () in
  let v = f () in
  (v, Wallclock.elapsed_since start)

(* One workload, three schedules. The serial run both sets the reference
   fingerprint and primes the workload's cost handle (per-item cost =
   measured serial total / items), so the adaptive run decides from a
   fresh, honest estimate rather than whatever earlier callers left in
   the EWMA. The forced run always engages the pool (Fixed policy) — it
   measures what engagement costs on this machine; the auto run is the
   shipped adaptive path. [speedup] grades the auto path against serial:
   when the cost model falls back the schedules are identical by
   construction, so the speedup is pinned to exactly 1.0 instead of
   reporting timer noise; when it engages, the measured ratio stands —
   an engaged decision that fails to beat serial is a regression and
   shows up as [speedup < 1.0]. *)
let measure ~label ~cost ~work_items ~fingerprint ~serial ~forced ~auto work =
  Pool.Cost.forget cost;
  let serial_r, serial_seconds = timed (fun () -> work serial) in
  let items = work_items serial_r in
  Pool.Cost.prime cost ~per_item_ns:(serial_seconds *. 1e9 /. float_of_int (max 1 items));
  let forced_r, forced_seconds = timed (fun () -> work forced) in
  let auto_r, auto_seconds = timed (fun () -> work auto) in
  let engaged, reason =
    match Pool.Cost.last_decision cost with
    | Some d -> (d.Pool.Cost.engaged, d.Pool.Cost.reason)
    | None -> (false, "serial-shortcut")
  in
  let reference = fingerprint serial_r in
  let bit_identical = reference = fingerprint forced_r && reference = fingerprint auto_r in
  let speedup =
    if not engaged then 1.0
    else if auto_seconds > 0.0 then serial_seconds /. auto_seconds
    else 0.0
  in
  let forced_speedup = if forced_seconds > 0.0 then serial_seconds /. forced_seconds else 0.0 in
  {
    label;
    work_items = items;
    serial_seconds;
    forced_seconds;
    auto_seconds;
    engaged;
    reason;
    speedup;
    forced_speedup;
    bit_identical;
  }

(* Everything but the wall clock; the attestation compares the physics,
   not the timing. *)
let strip (r : Harness.result) = { r with Harness.wall_seconds = 0.0 }

(* The (seed, alpha) sweep of the scalability workload: independent
   whole-experiment runs fanned across the pool. *)
let sweep_entry ~serial ~forced ~auto ~seed ~duration =
  let prior = Scalability.thin 8 (Priors.paper_prior ()) in
  let configs =
    List.concat_map
      (fun seed ->
        List.map
          (fun alpha -> { Harness.default with seed; duration; alpha; prior })
          [ 0.9; 1.0; 2.5; 5.0 ])
      [ seed; seed + 1 ]
  in
  measure ~label:"harness/scalability-sweep" ~cost:Harness.run_cost
    ~work_items:(fun _ -> List.length configs)
    ~fingerprint:(List.map strip) ~serial ~forced ~auto
    (fun pool -> Harness.run_many ~pool configs)

let hyp_fingerprint (h : _ Belief.hypothesis) =
  (h.Belief.params, Int64.bits_of_float h.Belief.logw, Mstate.canonical h.Belief.state)

let belief_fingerprint belief = List.map hyp_fingerprint (Belief.support belief)

let paper_window_sends =
  List.map
    (fun (at, seq) -> (at, Packet.make ~flow:Flow.Primary ~seq ~sent_at:at ()))
    [ (0.5, 0); (2.0, 1); (3.5, 2) ]

let paper_window_acks = [ { Belief.seq = 0; time = 1.5 }; { Belief.seq = 1; time = 3.0 } ]

(* One conditioning window of the exact filter over the full paper prior:
   the per-hypothesis Forward stepping and scoring fan across the pool. *)
let belief_entry ~serial ~forced ~auto =
  measure ~label:"belief/update-paper-prior" ~cost:Belief.expand_cost
    ~work_items:(fun (belief, _) -> Belief.size belief)
    ~fingerprint:(fun (belief, status) -> (status, belief_fingerprint belief))
    ~serial ~forced ~auto
    (fun pool ->
      let belief =
        Belief.create (Priors.seeds ~config:Forward.default_config (Priors.paper_prior ()))
      in
      Belief.update ~pool belief ~sends:paper_window_sends ~acks:paper_window_acks ~now:5.0 ())

(* Planner rollouts over the heaviest hypotheses of a converged-ish
   belief. No gross-utility cache: this entry times the full sweep. *)
let planner_entry ~serial ~forced ~auto =
  let belief =
    Belief.create (Priors.seeds ~config:Forward.default_config (Priors.paper_prior ()))
  in
  let belief = Belief.advance ~pool:serial belief ~sends:[] ~now:0.5 () in
  let make_packet at = Packet.make ~flow:Flow.Primary ~seq:0 ~sent_at:at () in
  let config =
    { Utc_core.Planner.default_config with Utc_core.Planner.delays = Harness.paper_delays }
  in
  let work_items = min (Belief.size belief) config.Utc_core.Planner.top_hyps in
  measure ~label:"planner/decide-top-hyps" ~cost:Utc_core.Planner.price_cost
    ~work_items:(fun _ -> work_items)
    ~fingerprint:Fun.id ~serial ~forced ~auto
    (fun pool ->
      Utc_core.Planner.decide ~pool config ~belief ~now:0.5 ~pending:[] ~make_packet)

let run ?domains ?(seed = 7) ?(duration = 30.0) () =
  let domains =
    match domains with
    | Some n -> n
    | None -> Pool.default_domains ()
  in
  Pool.with_pool ~domains:1 (fun serial ->
      Pool.with_pool ~domains (fun forced ->
          Pool.with_pool ~policy:Pool.Adaptive ~domains (fun auto ->
              let entries =
                [
                  belief_entry ~serial ~forced ~auto;
                  planner_entry ~serial ~forced ~auto;
                  sweep_entry ~serial ~forced ~auto ~seed ~duration;
                ]
              in
              {
                domains;
                recommended_domains = Pool.recommended ();
                entries;
                all_identical = List.for_all (fun e -> e.bit_identical) entries;
              })))

(* An entry regresses when the shipped (adaptive) path is slower than
   serial, or when any schedule changed the physics. Fallback entries
   have [speedup = 1.0] by construction and never appear here. *)
let regressions report =
  List.filter (fun e -> e.speedup < 1.0 || not e.bit_identical) report.entries

let to_json report =
  let buf = Buffer.create 1024 in
  let entry e =
    Printf.sprintf
      "    {\"label\": \"%s\", \"work_items\": %d, \"serial_seconds\": %.6f, \
       \"forced_seconds\": %.6f, \"auto_seconds\": %.6f, \"engaged\": %b, \"reason\": \
       \"%s\", \"speedup\": %.3f, \"forced_speedup\": %.3f, \"bit_identical\": %b}"
      (String.escaped e.label) e.work_items e.serial_seconds e.forced_seconds e.auto_seconds
      e.engaged (String.escaped e.reason) e.speedup e.forced_speedup e.bit_identical
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" report.domains);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" report.recommended_domains);
  Buffer.add_string buf (Printf.sprintf "  \"all_identical\": %b,\n" report.all_identical);
  Buffer.add_string buf "  \"entries\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map entry report.entries));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_json ~path report =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json report))

let pp_report ppf report =
  Format.fprintf ppf
    "Parallel execution: serial vs %d-domain wall time (machine recommends %d domains)@.@."
    report.domains report.recommended_domains;
  Format.fprintf ppf "%-28s %6s %10s %10s %10s %8s %18s %14s@." "workload" "items" "serial(s)"
    "forced(s)" "auto(s)" "speedup" "decision" "bit-identical";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-28s %6d %10.3f %10.3f %10.3f %8.2f %18s %14s@." e.label
        e.work_items e.serial_seconds e.forced_seconds e.auto_seconds e.speedup
        (if e.engaged then "engaged" else "fallback:" ^ e.reason)
        (if e.bit_identical then "EXACT" else "MISMATCH"))
    report.entries;
  Format.fprintf ppf "@.attestation: %s@."
    (if report.all_identical then
       "every pooled result is bit-identical to its serial counterpart"
     else "BIT-EQUALITY VIOLATION - pooled results diverged from serial");
  match regressions report with
  | [] -> Format.fprintf ppf "no regressions: the adaptive path never loses to serial@."
  | rs ->
    Format.fprintf ppf "REGRESSION - %d entr%s slower than serial or diverged: %s@."
      (List.length rs)
      (if List.length rs = 1 then "y" else "ies")
      (String.concat ", " (List.map (fun e -> e.label) rs))
