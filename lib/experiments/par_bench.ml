module Pool = Utc_parallel.Pool
module Belief = Utc_inference.Belief
module Priors = Utc_inference.Priors
module Forward = Utc_model.Forward
module Mstate = Utc_model.Mstate
module Wallclock = Utc_sim.Wallclock
open Utc_net

type entry = {
  label : string;
  work_items : int;
  serial_seconds : float;
  parallel_seconds : float;
  speedup : float;
  bit_identical : bool;
}

type report = {
  domains : int;
  recommended_domains : int;
  entries : entry list;
  all_identical : bool;
}

let timed f =
  let start = Wallclock.now () in
  let v = f () in
  (v, Wallclock.elapsed_since start)

let entry ~label ~work_items ~serial_seconds ~parallel_seconds ~bit_identical =
  {
    label;
    work_items;
    serial_seconds;
    parallel_seconds;
    speedup = (if parallel_seconds > 0.0 then serial_seconds /. parallel_seconds else 0.0);
    bit_identical;
  }

(* Everything but the wall clock; the attestation compares the physics,
   not the timing. *)
let strip (r : Harness.result) = { r with Harness.wall_seconds = 0.0 }

(* The (seed, alpha) sweep of the scalability workload: independent
   whole-experiment runs fanned across the pool. *)
let sweep_entry pool ~seed ~duration =
  let prior = Scalability.thin 8 (Priors.paper_prior ()) in
  let configs =
    List.concat_map
      (fun seed ->
        List.map
          (fun alpha -> { Harness.default with seed; duration; alpha; prior })
          [ 0.9; 1.0; 2.5; 5.0 ])
      [ seed; seed + 1 ]
  in
  let serial, serial_seconds =
    timed (fun () -> Pool.with_pool ~domains:1 (fun p -> Harness.run_many ~pool:p configs))
  in
  let parallel, parallel_seconds = timed (fun () -> Harness.run_many ~pool configs) in
  let bit_identical =
    List.length serial = List.length parallel
    && List.for_all2 (fun a b -> strip a = strip b) serial parallel
  in
  entry ~label:"harness/scalability-sweep" ~work_items:(List.length configs) ~serial_seconds
    ~parallel_seconds ~bit_identical

let hyp_fingerprint (h : _ Belief.hypothesis) =
  (h.Belief.params, Int64.bits_of_float h.Belief.logw, Mstate.canonical h.Belief.state)

let belief_fingerprint belief = List.map hyp_fingerprint (Belief.support belief)

let paper_window_sends =
  List.map
    (fun (at, seq) -> (at, Packet.make ~flow:Flow.Primary ~seq ~sent_at:at ()))
    [ (0.5, 0); (2.0, 1); (3.5, 2) ]

let paper_window_acks = [ { Belief.seq = 0; time = 1.5 }; { Belief.seq = 1; time = 3.0 } ]

(* One conditioning window of the exact filter over the full paper prior:
   the per-hypothesis Forward stepping and scoring fan across the pool. *)
let belief_entry pool =
  let make () =
    Belief.create (Priors.seeds ~config:Forward.default_config (Priors.paper_prior ()))
  in
  let update pool belief =
    Belief.update ~pool belief ~sends:paper_window_sends ~acks:paper_window_acks ~now:5.0 ()
  in
  let serial_belief = make () in
  let (serial, serial_status), serial_seconds =
    timed (fun () -> Pool.with_pool ~domains:1 (fun p -> update p serial_belief))
  in
  let parallel_belief = make () in
  let (parallel, parallel_status), parallel_seconds =
    timed (fun () -> update pool parallel_belief)
  in
  let bit_identical =
    serial_status = parallel_status
    && belief_fingerprint serial = belief_fingerprint parallel
  in
  entry ~label:"belief/update-paper-prior" ~work_items:(Belief.size serial) ~serial_seconds
    ~parallel_seconds ~bit_identical

(* Planner rollouts over the heaviest hypotheses of a converged-ish
   belief. *)
let planner_entry pool =
  let belief =
    Belief.create (Priors.seeds ~config:Forward.default_config (Priors.paper_prior ()))
  in
  let belief = Belief.advance ~pool belief ~sends:[] ~now:0.5 () in
  let make_packet at = Packet.make ~flow:Flow.Primary ~seq:0 ~sent_at:at () in
  let config =
    { Utc_core.Planner.default_config with Utc_core.Planner.delays = Harness.paper_delays }
  in
  let decide pool =
    Utc_core.Planner.decide ~pool config ~belief ~now:0.5 ~pending:[] ~make_packet
  in
  let serial, serial_seconds =
    timed (fun () -> Pool.with_pool ~domains:1 (fun p -> decide p))
  in
  let parallel, parallel_seconds = timed (fun () -> decide pool) in
  let bit_identical = serial = parallel in
  entry ~label:"planner/decide-top-hyps"
    ~work_items:(min (Belief.size belief) config.Utc_core.Planner.top_hyps)
    ~serial_seconds ~parallel_seconds ~bit_identical

let run ?domains ?(seed = 7) ?(duration = 30.0) () =
  let domains =
    match domains with
    | Some n -> n
    | None -> Pool.default_domains ()
  in
  Pool.with_pool ~domains (fun pool ->
      let entries = [ belief_entry pool; planner_entry pool; sweep_entry pool ~seed ~duration ] in
      {
        domains;
        recommended_domains = Pool.recommended ();
        entries;
        all_identical = List.for_all (fun e -> e.bit_identical) entries;
      })

let to_json report =
  let buf = Buffer.create 1024 in
  let entry e =
    Printf.sprintf
      "    {\"label\": \"%s\", \"work_items\": %d, \"serial_seconds\": %.6f, \
       \"parallel_seconds\": %.6f, \"speedup\": %.3f, \"bit_identical\": %b}"
      (String.escaped e.label) e.work_items e.serial_seconds e.parallel_seconds e.speedup
      e.bit_identical
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"domains\": %d,\n" report.domains);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" report.recommended_domains);
  Buffer.add_string buf (Printf.sprintf "  \"all_identical\": %b,\n" report.all_identical);
  Buffer.add_string buf "  \"entries\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map entry report.entries));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_json ~path report =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json report))

let pp_report ppf report =
  Format.fprintf ppf
    "Parallel execution: serial vs %d-domain wall time (machine recommends %d domains)@.@."
    report.domains report.recommended_domains;
  Format.fprintf ppf "%-28s %6s %10s %12s %8s %14s@." "workload" "items" "serial(s)"
    "parallel(s)" "speedup" "bit-identical";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-28s %6d %10.3f %12.3f %8.2f %14s@." e.label e.work_items
        e.serial_seconds e.parallel_seconds e.speedup
        (if e.bit_identical then "EXACT" else "MISMATCH"))
    report.entries;
  Format.fprintf ppf "@.attestation: %s@."
    (if report.all_identical then
       "every pooled result is bit-identical to its serial counterpart"
     else "BIT-EQUALITY VIOLATION - pooled results diverged from serial")
