(** Shared driver for the §4 experiments: ground truth + ISender + logs.

    Builds the ground-truth network, seeds the belief from a prior over
    the Figure 2 family, wires receiver and sender, runs to a horizon, and
    collects everything the figures plot. *)

type config = {
  truth : Utc_net.Topology.t;  (** Ground-truth network. *)
  prior : (Utc_inference.Priors.fig2_params * float) list;
  alpha : float;
  kappa : float;
  cross_discounted : bool;
  latency_penalty : float;
  planner_delays : float list;
  duration : float;
  seed : int;
  max_hyps : int;
  cap_policy : Utc_inference.Belief.cap_policy;
  epoch : float;  (** Gate fork epoch (s). *)
  loss_mode : [ `Likelihood | `Fork ];
}

val default : config
(** The paper's §4 experiment: square-wave truth, full paper prior,
    [alpha = 1], 300 s, link-scaled candidate delays. *)

val paper_delays : float list
(** Candidate delays scaled to the §4 link (service time 1 s; residual
    pace against a 0.7c pinger is 3.33 s). *)

type sample = {
  at : Utc_sim.Timebase.t;
  belief_size : int;
  entropy : float;
  truth_mass : float;
      (** Posterior mass on the true (c, r, p, capacity) cell. *)
  m_link : float;  (** P(c = true c). *)
  m_rate : float;  (** P(r = true r). *)
  m_loss : float;  (** P(p = true p). *)
  m_buffer : float;  (** P(capacity = true capacity). *)
  m_fullness : float;  (** P(initial fullness = true fullness). *)
}

type result = {
  config : config;
  sent : (Utc_sim.Timebase.t * int) list;  (** Figure 3's series. *)
  sent_count : int;  (** [List.length sent], carried O(1). *)
  acked : (Utc_sim.Timebase.t * int) list;
  acked_count : int;  (** [List.length acked], carried O(1). *)
  primary_deliveries : (Utc_sim.Timebase.t * Utc_net.Packet.t) list;
  cross_deliveries : (Utc_sim.Timebase.t * Utc_net.Packet.t) list;
  tail_drops : int;
  tail_drops_cross : int;
  queue_trace : (Utc_sim.Timebase.t * int) list;  (** Bits at the bottleneck. *)
  samples : sample list;  (** Belief-convergence trace, oldest first. *)
  final_posterior : (Utc_inference.Priors.fig2_params * float) list;
  rejected_updates : int;
  wall_seconds : float;
}

val run : config -> result

val run_many : ?pool:Utc_parallel.Pool.t -> config list -> result list
(** Independent runs fanned across [pool] (default:
    {!Utc_parallel.Pool.default}), results in input order. Each run owns
    its engine and RNG (seeded from its config), so the results are
    bit-identical to mapping {!run} serially — only [wall_seconds]
    depends on the schedule. *)

val run_cost : Utc_parallel.Pool.Cost.t
(** The adaptive cost handle behind {!run_many}'s fan-out (label
    ["harness.run"]); exposed for the parallel benchmark and tests. *)

val throughput : result -> flow:Utc_net.Flow.t -> since:float -> until:float -> float
(** Delivered bits per second within a window. *)

val sends_in : result -> since:float -> until:float -> int
