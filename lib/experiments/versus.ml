open Utc_net
module Engine = Utc_sim.Engine
module Belief = Utc_inference.Belief
module Priors = Utc_inference.Priors

type share = {
  label : string;
  primary_bps : float;
  other_bps : float;
  jain : float;
  drops : int;
  rejected_updates : int;
}

(* Under misspecification the belief cannot converge, so a full grid just
   burns time; a thinned prior and tighter caps keep the probe honest and
   fast. *)
let thinned_prior () =
  let cells = List.filteri (fun i _ -> i mod 7 = 0) (Priors.paper_prior ()) in
  let w = 1.0 /. float_of_int (List.length cells) in
  List.map (fun (p, _) -> (p, w)) cells

let versus_forward_config = { Utc_model.Forward.default_config with max_branches = 64 }

let isender_vs_tcp ?(seed = 9) ?(duration = 300.0) ?(alpha = 1.0) () =
  let truth =
    {
      Topology.sources = [ Topology.endpoint Flow.Primary; Topology.endpoint (Flow.Aux 0) ];
      shared =
        Topology.series
          [ Topology.buffer ~capacity_bits:96_000; Topology.throughput ~rate_bps:12_000.0 ];
    }
  in
  let engine = Engine.create ~seed () in
  let receiver = Utc_core.Receiver.create engine in
  let compiled = Compiled.compile_exn truth in
  let runtime = Utc_elements.Runtime.build engine compiled (Utc_core.Receiver.callbacks receiver) in
  (* The ISender keeps its §4 model family: TCP's traffic must be
     explained as an intermittent pinger, i.e. deliberate
     misspecification. *)
  let belief =
    Belief.create ~max_hyps:2_000
      (Priors.seeds ~config:versus_forward_config (thinned_prior ()))
  in
  let utility = Utc_utility.Utility.make ~alpha ~cross_discounted:true () in
  let planner =
    { Utc_core.Planner.default_config with utility; delays = Harness.paper_delays }
  in
  let isender =
    Utc_core.Isender.create engine
      { Utc_core.Isender.default_config with planner }
      ~belief
      ~inject:(fun pkt -> Utc_elements.Runtime.inject runtime Flow.Primary pkt)
  in
  Utc_core.Receiver.subscribe receiver Flow.Primary (fun _ pkt ->
      Utc_core.Isender.on_ack isender pkt);
  let tcp =
    Utc_tcp.Sender.create engine
      { Utc_tcp.Sender.default_config with flow = Flow.Aux 0 }
      ~inject:(fun pkt -> Utc_elements.Runtime.inject runtime (Flow.Aux 0) pkt)
  in
  Utc_core.Receiver.subscribe receiver (Flow.Aux 0) (fun _ pkt ->
      Utc_tcp.Sender.on_delivery tcp pkt);
  Utc_core.Isender.start isender;
  Utc_tcp.Sender.start tcp;
  Engine.run ~until:duration engine;
  let primary_bps = Utc_core.Receiver.throughput receiver Flow.Primary ~since:0.0 ~until:duration in
  let other_bps = Utc_core.Receiver.throughput receiver (Flow.Aux 0) ~since:0.0 ~until:duration in
  {
    label = Printf.sprintf "ISender (alpha=%g) vs Reno" alpha;
    primary_bps;
    other_bps;
    jain = Utc_stats.Fairness.jain [ primary_bps; other_bps ];
    drops = List.length (Utc_core.Receiver.drops receiver);
    rejected_updates = Utc_core.Isender.rejected_updates isender;
  }

(* Two ISenders share the bottleneck; each keeps the paper's model
   family, so each explains the other's traffic as an intermittent
   pinger. Internally each sender works in its own frame (it is Primary
   in its own model); only egress packets are rewritten to the real
   flow. *)
let isender_vs_isender ?(seed = 9) ?(duration = 300.0) ?(alpha = 1.0) () =
  let truth =
    {
      Topology.sources = [ Topology.endpoint Flow.Primary; Topology.endpoint (Flow.Aux 0) ];
      shared =
        Topology.series
          [ Topology.buffer ~capacity_bits:96_000; Topology.throughput ~rate_bps:12_000.0 ];
    }
  in
  let engine = Engine.create ~seed () in
  let receiver = Utc_core.Receiver.create engine in
  let compiled = Compiled.compile_exn truth in
  let runtime = Utc_elements.Runtime.build engine compiled (Utc_core.Receiver.callbacks receiver) in
  let utility = Utc_utility.Utility.make ~alpha ~cross_discounted:true () in
  let planner =
    { Utc_core.Planner.default_config with utility; delays = Harness.paper_delays }
  in
  let make_sender flow =
    let belief =
      Belief.create ~max_hyps:2_000 (Priors.seeds ~config:versus_forward_config (thinned_prior ()))
    in
    let isender =
      Utc_core.Isender.create engine
        { Utc_core.Isender.default_config with planner }
        ~belief
        ~inject:(fun pkt ->
          Utc_elements.Runtime.inject runtime flow { pkt with Packet.flow })
    in
    Utc_core.Receiver.subscribe receiver flow (fun _ pkt ->
        Utc_core.Isender.on_ack isender pkt);
    isender
  in
  let a = make_sender Flow.Primary in
  let b = make_sender (Flow.Aux 0) in
  Utc_core.Isender.start a;
  Utc_core.Isender.start b;
  Engine.run ~until:duration engine;
  let primary_bps = Utc_core.Receiver.throughput receiver Flow.Primary ~since:0.0 ~until:duration in
  let other_bps = Utc_core.Receiver.throughput receiver (Flow.Aux 0) ~since:0.0 ~until:duration in
  {
    label = Printf.sprintf "ISender vs ISender (alpha=%g each)" alpha;
    primary_bps;
    other_bps;
    jain = Utc_stats.Fairness.jain [ primary_bps; other_bps ];
    drops = List.length (Utc_core.Receiver.drops receiver);
    rejected_updates =
      Utc_core.Isender.rejected_updates a + Utc_core.Isender.rejected_updates b;
  }

(* --- many senders: the §3.5 contention experiment scaled out --- *)

type flow_row = {
  sender : int;
  flow : string;
  f_sent : int;
  f_delivered : int;
  f_throughput_bps : float;
  f_mean_rtt : float;
  f_queue_drops : int;
}

type many = {
  senders : int;
  many_duration : float;
  rows : flow_row list;  (** one per sender, in sender order *)
  many_jain : float;
  total_drops : int;
}

(* Per-flow accounting lives in labeled families: one child per sender
   flow, resolved once per run and cached, so the hot-path cost is an
   ordinary counter increment. At the default 1024-child cap the full
   256-sender workload fits with room to spare; anything wider degrades
   to the [other] child instead of unbounded registry growth. *)
let sent_cf = Utc_obs.Metrics.counter_family "versus.flow.sent"
let delivered_cf = Utc_obs.Metrics.counter_family "versus.flow.delivered"
let queue_drops_cf = Utc_obs.Metrics.counter_family "versus.flow.queue_drops"
let throughput_gf = Utc_obs.Metrics.gauge_family "versus.flow.throughput_bps"

let rtt_hf =
  Utc_obs.Metrics.histogram_family "versus.flow.rtt"
    ~buckets:[ 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0 ]

let many_senders ?(seed = 9) ?(duration = 60.0) ~senders () =
  if senders < 1 || senders > 256 then
    invalid_arg "Versus.many_senders: senders must be in 1..256";
  let n = senders in
  let flows = List.init n (fun i -> Flow.Aux i) in
  (* The §4 bottleneck scaled with the population: per-sender fair share
     and per-sender buffer quota stay constant, so contention dynamics —
     not starvation — are what changes with N. *)
  let truth =
    {
      Topology.sources = List.map Topology.endpoint flows;
      shared =
        Topology.series
          [
            Topology.buffer ~capacity_bits:(48_000 * n);
            Topology.throughput ~rate_bps:(12_000.0 *. float_of_int n);
          ];
    }
  in
  let engine = Engine.create ~seed () in
  let receiver = Utc_core.Receiver.create engine in
  let compiled = Compiled.compile_exn truth in
  let runtime = Utc_elements.Runtime.build engine compiled (Utc_core.Receiver.callbacks receiver) in
  let tcps =
    List.map
      (fun flow ->
        let labels = [ ("flow", Flow.to_string flow) ] in
        let sent_c = Utc_obs.Metrics.labeled sent_cf labels in
        let delivered_c = Utc_obs.Metrics.labeled delivered_cf labels in
        let tcp =
          Utc_tcp.Sender.create engine
            { Utc_tcp.Sender.default_config with flow }
            ~inject:(fun pkt ->
              Utc_obs.Metrics.incr sent_c;
              Utc_elements.Runtime.inject runtime flow pkt)
        in
        Utc_core.Receiver.subscribe receiver flow (fun _ pkt ->
            Utc_obs.Metrics.incr delivered_c;
            Utc_tcp.Sender.on_delivery tcp pkt);
        tcp)
      flows
  in
  List.iter Utc_tcp.Sender.start tcps;
  Engine.run ~until:duration engine;
  (* Serial epilogue: fold the drop log once, then publish per-flow
     results into the families. *)
  let drop_counts = Array.make n 0 in
  let all_drops = Utc_core.Receiver.drops receiver in
  List.iter
    (fun (_, _, _, pkt) ->
      match pkt.Utc_net.Packet.flow with
      | Flow.Aux i when i >= 0 && i < n -> drop_counts.(i) <- drop_counts.(i) + 1
      | _ -> ())
    all_drops;
  let rows =
    List.mapi
      (fun i (flow, tcp) ->
        let fl = Flow.to_string flow in
        let labels = [ ("flow", fl) ] in
        let throughput =
          Utc_core.Receiver.throughput receiver flow ~since:0.0 ~until:duration
        in
        let rtts = List.map snd (Utc_tcp.Sender.rtt_trace tcp) in
        let mean_rtt =
          match Utc_stats.Summary.of_list rtts with
          | Some s -> s.Utc_stats.Summary.mean
          | None -> 0.0
        in
        Utc_obs.Metrics.set_gauge (Utc_obs.Metrics.labeled throughput_gf labels) throughput;
        Utc_obs.Metrics.add (Utc_obs.Metrics.labeled queue_drops_cf labels) drop_counts.(i);
        let rtt_h = Utc_obs.Metrics.labeled rtt_hf labels in
        List.iter (Utc_obs.Metrics.observe rtt_h) rtts;
        {
          sender = i;
          flow = fl;
          f_sent = Utc_tcp.Sender.sent_count tcp;
          f_delivered = Utc_tcp.Sender.delivered tcp;
          f_throughput_bps = throughput;
          f_mean_rtt = mean_rtt;
          f_queue_drops = drop_counts.(i);
        })
      (List.combine flows tcps)
  in
  {
    senders = n;
    many_duration = duration;
    rows;
    many_jain = Utc_stats.Fairness.jain (List.map (fun r -> r.f_throughput_bps) rows);
    total_drops = List.length all_drops;
  }

type aqm_row = {
  discipline : string;
  throughput_bps : float;
  mean_rtt : float;
  p95_rtt : float;
  aqm_drops : int;
}

let tcp_through ~seed ~duration ~make_station =
  let engine = Engine.create ~seed () in
  let sender_cell = ref None in
  let prop_delay = 0.03 in
  let to_receiver =
    Utc_elements.Node.of_fn (fun pkt ->
        ignore
          (Engine.schedule_after ~prio:(Evprio.arrival pkt.Packet.flow) engine ~delay:prop_delay
             (fun () ->
               match !sender_cell with
               | Some sender -> Utc_tcp.Sender.on_delivery sender pkt
               | None -> ())))
  in
  let station, drops = make_station engine to_receiver in
  let sender = Utc_tcp.Sender.create engine Utc_tcp.Sender.default_config ~inject:station.Utc_elements.Node.push in
  sender_cell := Some sender;
  Utc_tcp.Sender.start sender;
  Engine.run ~until:duration engine;
  let rtts = List.map snd (Utc_tcp.Sender.rtt_trace sender) in
  let mean_rtt, p95_rtt =
    match Utc_stats.Summary.of_list rtts with
    | Some s -> (s.Utc_stats.Summary.mean, Utc_stats.Summary.percentile rtts ~q:0.95)
    | None -> (0.0, 0.0)
  in
  ( float_of_int (Utc_tcp.Sender.delivered sender * Packet.default_bits) /. duration,
    mean_rtt,
    p95_rtt,
    drops () )

let tcp_under_aqm ?(seed = 9) ?(duration = 200.0) () =
  let rate_bps = 1_000_000.0 in
  let capacity_bits = 3_000_000 in
  let taildrop engine next =
    let arq =
      Utc_elements.Arq.create engine ~rate_bps ~try_loss:0.0 ~capacity_bits ~next ()
    in
    (Utc_elements.Arq.node arq, fun () -> Utc_elements.Arq.drops arq)
  in
  let red engine next =
    let t =
      Utc_elements.Aqm.red engine ~rate_bps
        ~params:(Utc_elements.Aqm.default_red ~capacity_bits)
        ~next ()
    in
    (Utc_elements.Aqm.node t, fun () -> Utc_elements.Aqm.drops t)
  in
  let codel engine next =
    let t =
      Utc_elements.Aqm.codel engine ~rate_bps
        ~params:(Utc_elements.Aqm.default_codel ~capacity_bits)
        ~next ()
    in
    (Utc_elements.Aqm.node t, fun () -> Utc_elements.Aqm.drops t)
  in
  List.map
    (fun (discipline, make_station) ->
      let throughput_bps, mean_rtt, p95_rtt, aqm_drops =
        tcp_through ~seed ~duration ~make_station
      in
      { discipline; throughput_bps; mean_rtt; p95_rtt; aqm_drops })
    [ ("tail-drop", taildrop); ("RED", red); ("CoDel", codel) ]

let pp_share ppf share =
  Format.fprintf ppf
    "%s: primary %.0f bps, other %.0f bps, Jain %.3f, drops %d, rejected updates %d@."
    share.label share.primary_bps share.other_bps share.jain share.drops share.rejected_updates

let pp_many ppf m =
  Format.fprintf ppf "%d Reno senders sharing a %.0f bps bottleneck for %gs@." m.senders
    (12_000.0 *. float_of_int m.senders)
    m.many_duration;
  Format.fprintf ppf "Jain %.3f, %d queue drops total@." m.many_jain m.total_drops;
  let tps = List.map (fun r -> r.f_throughput_bps) m.rows in
  (match Utc_stats.Summary.of_list tps with
  | Some s ->
    Format.fprintf ppf "per-flow goodput: mean %.0f bps, min %.0f, max %.0f@."
      s.Utc_stats.Summary.mean s.Utc_stats.Summary.min s.Utc_stats.Summary.max
  | None -> ());
  if m.senders <= 16 then begin
    Format.fprintf ppf "%-8s %-8s %8s %10s %14s %10s %8s@." "sender" "flow" "sent" "delivered"
      "goodput(bps)" "mean RTT" "drops";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-8d %-8s %8d %10d %14.0f %10.3f %8d@." r.sender r.flow r.f_sent
          r.f_delivered r.f_throughput_bps r.f_mean_rtt r.f_queue_drops)
      m.rows
  end
  else
    Format.fprintf ppf
      "(%d rows; per-flow series live in the metric families — utc metrics versus --senders %d \
       --json)@."
      m.senders m.senders

let pp_aqm ppf rows =
  Format.fprintf ppf "%-10s %14s %10s %10s %8s@." "discipline" "goodput(bps)" "mean RTT" "p95 RTT"
    "drops";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %14.0f %10.3f %10.3f %8d@." r.discipline r.throughput_bps
        r.mean_rtt r.p95_rtt r.aqm_drops)
    rows
