(** Serial-vs-parallel benchmark with a bit-equality attestation and a
    no-regression grade for the adaptive scheduler.

    Times the three pool-backed layers — one {!Utc_inference.Belief}
    conditioning window over the full paper prior, one
    {!Utc_core.Planner.decide} over the heaviest hypotheses, and a
    (seed, α) sweep of whole {!Harness} runs — under three schedules:
    serial (one domain), forced (an [N]-domain [Fixed] pool that always
    engages), and auto (an [N]-domain [Adaptive] pool running the shipped
    cost-model decision, primed from the measured serial run). Results
    must be bit-identical across all three (everything except wall time).
    The report feeds [BENCH_parallel.json] (CI artifact) and the
    EXPERIMENTS.md speedup table.

    [speedup] grades the shipped path: serial over auto wall time when
    the cost model engaged the pool, and exactly 1.0 when it fell back
    (the schedules are identical by construction, so timer noise is not
    reported as a slowdown). An entry with [speedup < 1.0] means the
    adaptive scheduler made a run slower — the regression this benchmark
    exists to catch. [forced_speedup] is informational: what unconditional
    engagement costs or buys on this machine. *)

type entry = {
  label : string;
  work_items : int;  (** Independent units fanned across the pool. *)
  serial_seconds : float;
  forced_seconds : float;  (** [Fixed] pool: always engages. *)
  auto_seconds : float;  (** [Adaptive] pool: measured decision. *)
  engaged : bool;  (** Did the cost model engage the pool? *)
  reason : string;  (** Decision reason (e.g. ["below-threshold"]). *)
  speedup : float;
      (** [serial /. auto] when engaged; exactly [1.0] on fallback. *)
  forced_speedup : float;  (** [serial /. forced], informational. *)
  bit_identical : bool;  (** Serial, forced and auto results all agree. *)
}

type report = {
  domains : int;
  recommended_domains : int;
  entries : entry list;
  all_identical : bool;
}

val run : ?domains:int -> ?seed:int -> ?duration:float -> unit -> report
(** [domains] defaults to {!Utc_parallel.Pool.default_domains} (the
    [UTC_DOMAINS] environment, or the machine's recommended domain count
    when unset); [seed] (default 7) and [duration] (default 30 s) shape
    the harness sweep. *)

val regressions : report -> entry list
(** Entries where the shipped adaptive path lost to serial
    ([speedup < 1.0]) or any schedule changed the result
    ([bit_identical = false]). Empty on a healthy machine. *)

val to_json : report -> string

val write_json : path:string -> report -> unit

val pp_report : Format.formatter -> report -> unit
