(** Serial-vs-parallel benchmark with a bit-equality attestation.

    Times the three pool-backed layers — one {!Utc_inference.Belief}
    conditioning window over the full paper prior, one
    {!Utc_core.Planner.decide} over the heaviest hypotheses, and a
    (seed, α) sweep of whole {!Harness} runs — serially and on an
    [N]-domain pool, and checks the pooled results are bit-identical to
    the serial ones (everything except wall time). The report feeds
    [BENCH_parallel.json] (CI artifact) and the EXPERIMENTS.md speedup
    table.

    Speedup is hardware-relative: on a single-core container it is ~1
    even though the partitioning is perfect, which is why
    [recommended_domains] (the machine's core inventory) is part of the
    record. Bit-equality must hold everywhere. *)

type entry = {
  label : string;
  work_items : int;  (** Independent units fanned across the pool. *)
  serial_seconds : float;
  parallel_seconds : float;
  speedup : float;  (** [serial_seconds /. parallel_seconds]. *)
  bit_identical : bool;
}

type report = {
  domains : int;
  recommended_domains : int;
  entries : entry list;
  all_identical : bool;
}

val run : ?domains:int -> ?seed:int -> ?duration:float -> unit -> report
(** [domains] defaults to {!Utc_parallel.Pool.default_domains} (the
    [UTC_DOMAINS] environment); [seed] (default 7) and [duration]
    (default 30 s) shape the harness sweep. *)

val to_json : report -> string

val write_json : path:string -> report -> unit

val pp_report : Format.formatter -> report -> unit
