(** Cost of the filter as the prior grows (§3.2's computational remark).

    The paper: "This rejection-sampling approach is limited
    computationally; we have found that maintaining more than a few
    million possible discrete channel configurations is impractical."
    This experiment measures our filter's wall-clock cost against the
    prior size on the §4 workload, with and without the bounded particle
    filter, so the scaling claim is a number rather than an anecdote. *)

type row = {
  prior_cells : int;
  cap : int;  (** Hypothesis cap in force. *)
  policy : string;  (** "top-k" or "resample". *)
  wall_seconds : float;
  sent : int;
  truth_mass : float;  (** Posterior mass on the true (c, r, p, cap) cell. *)
}

val thin :
  int ->
  (Utc_inference.Priors.fig2_params * float) list ->
  (Utc_inference.Priors.fig2_params * float) list
(** [thin fraction prior] keeps every [fraction]-th cell (and always the
    true configuration), reweighted uniformly. [thin 1] is the identity.
    Shared with {!Par_bench}, which sweeps the same thinned workload. *)

val run : ?seed:int -> ?duration:float -> ?fractions:int list -> unit -> row list
(** Thin the paper prior by each factor in [fractions] (default
    [32; 8; 2; 1], i.e. ~150 to ~4800 cells; the true cell is always
    kept), run the §4 experiment for [duration] (default 60 s), and add
    one bounded-particle run on the full prior. The particle run is the
    honest cautionary tale: resampling a uniform prior down to the cap
    can lose the true cell before any observation arrives, so its
    [truth_mass] may be 0. *)

val pp_rows : Format.formatter -> row list -> unit
