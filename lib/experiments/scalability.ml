module Priors = Utc_inference.Priors

type row = {
  prior_cells : int;
  cap : int;
  policy : string;
  wall_seconds : float;
  sent : int;
  truth_mass : float;
}

(* Keep every fraction-th cell, always retaining the true configuration
   so posterior-on-truth stays a meaningful column. *)
let thin fraction prior =
  if fraction <= 1 then prior
  else begin
    let truth = Priors.paper_truth in
    let cells =
      List.filteri (fun i (p, _) -> i mod fraction = 0 || p = truth) prior
    in
    let w = 1.0 /. float_of_int (List.length cells) in
    List.map (fun (p, _) -> (p, w)) cells
  end

let row_of ~policy ~prior (result : Harness.result) =
  let truth_mass =
    match List.rev result.Harness.samples with
    | last :: _ -> last.Harness.truth_mass
    | [] -> 0.0
  in
  {
    prior_cells = List.length prior;
    cap = result.Harness.config.Harness.max_hyps;
    policy;
    wall_seconds = result.Harness.wall_seconds;
    sent = result.Harness.sent_count;
    truth_mass;
  }

let run ?(seed = 7) ?(duration = 60.0) ?(fractions = [ 32; 8; 2; 1 ]) () =
  let full = Priors.paper_prior () in
  let exact =
    List.map
      (fun fraction ->
        let prior = thin fraction full in
        let result = Harness.run { Harness.default with seed; duration; prior } in
        row_of ~policy:"top-k" ~prior result)
      fractions
  in
  let particle =
    let result =
      Harness.run
        {
          Harness.default with
          seed;
          duration;
          prior = full;
          max_hyps = 256;
          cap_policy = `Resample (Utc_sim.Rng.create ~seed:(seed + 500));
        }
    in
    row_of ~policy:"resample" ~prior:full result
  in
  exact @ [ particle ]

let pp_rows ppf rows =
  Format.fprintf ppf "%12s %8s %10s %10s %6s %10s@." "prior cells" "cap" "policy" "wall(s)"
    "sent" "P(truth)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%12d %8d %10s %10.2f %6d %10.3f@." r.prior_cells r.cap r.policy
        r.wall_seconds r.sent r.truth_mass)
    rows;
  Format.fprintf ppf
    "@.(S3.2: the exact filter's cost grows with the prior until observations@.";
  Format.fprintf ppf
    " prune it. The bounded resampler caps the cost, but resampling a still-@.";
  Format.fprintf ppf
    " uninformative prior can drop the true cell before any ACK weighs in -@.";
  Format.fprintf ppf
    " P(truth) may read 0 for it. The scalable path past \"a few million@.";
  Format.fprintf ppf
    " configurations\" needs caps above the plausible-cell count, or@.";
  Format.fprintf ppf " resampling deferred until the posterior is informative)@."
