(** Mean-field experiment: the fluid backend at population scale, plus
    its referee.

    [run] drives {!Utc_net.Fluid}: a background population of AIMD flows
    integrated as aggregate per-class window state, with a handful of
    packet-accurate foreground Reno senders coupled through the shared
    queues. Per-flow foreground accounting is published through the same
    [versus.flow.*] labeled families as {!Versus.many_senders}; the
    population publishes new [meanfield.agg.*] entries and journal marks.

    [packet_truth] runs the same topology with every background flow as a
    real {!Utc_tcp.Sender} on the direct runtime — feasible up to 256
    flows — and [validate] compares the two, yielding the agreement
    numbers the cross-validation suite asserts. *)

type topo =
  | Single  (** One scaled §4 bottleneck. *)
  | Parking_lot
      (** Two bottlenecks in series separated by a 20 ms hop; the second
          has 80% of the first's rate and is the binding constraint. *)

val topo_to_string : topo -> string
val topo_of_string : string -> (topo, string) result

type config = {
  seed : int;
  duration : float;
  background : int;  (** Fluid background flows (0 allowed). *)
  classes : int;  (** Population classes the background is chunked into. *)
  foreground : int;  (** Packet-accurate Reno senders, flows [Aux 0..]. *)
  topo : topo;
  dt : float;  (** Integrator step. *)
  sample_every : float;  (** Aggregate sampling period. *)
}

val default_config : config
(** seed 1, 120 s, 5,000 background flows in 8 classes, 2 foreground
    senders, single bottleneck, dt 10 ms, 1 s samples. *)

type fg_row = {
  fg_sender : int;
  fg_flow : string;
  fg_sent : int;
  fg_delivered : int;
  fg_throughput_bps : float;
  fg_mean_rtt : float;
}

type summary = {
  m_topo : topo;
  m_background : int;
  m_classes : int;
  m_foreground : int;
  m_duration : float;
  final : Utc_net.Fluid.agg;  (** Aggregate state at the end of the run. *)
  bg_goodput_bps : float;
      (** Steady-state background goodput: delivered bits over the second
          half of the run divided by its length. *)
  bg_queue_bits : float;
      (** Steady-state mean total queue (fluid backlog + foreground bits,
          summed over background-path stations), sampled over the second
          half. *)
  fg_rows : fg_row list;
  ticks : int;  (** Integrator steps executed. *)
}

val run : ?config:config -> unit -> summary
(** Raises [Invalid_argument] if [background < 0], [foreground] outside
    [0..256], or the fluid backend rejects the configuration. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Packet-level truth and cross-validation} *)

type truth = {
  t_n : int;  (** Background senders actually simulated. *)
  t_goodput_bps : float;  (** Steady-state aggregate background goodput. *)
  t_queue_bits : float;
      (** Time-weighted mean of total queued bits over the second half. *)
}

val packet_truth :
  ?seed:int -> ?duration:float -> ?foreground:int -> topo:topo -> background:int -> unit -> truth
(** Every background flow is a real Reno sender on the direct runtime.
    Raises [Invalid_argument] if [background + foreground] exceeds 256. *)

type agreement = {
  a_topo : topo;
  a_n : int;
  fluid_goodput_bps : float;
  packet_goodput_bps : float;
  goodput_rel_err : float;  (** |fluid - packet| / packet. *)
  fluid_queue_bits : float;
  packet_queue_bits : float;
  queue_frac_of_buffer : float;
      (** |fluid - packet| / total buffer capacity — queue agreement is
          stated against capacity because near-empty queues make relative
          error degenerate. *)
}

val validate : ?seed:int -> ?duration:float -> topo:topo -> n:int -> unit -> agreement
(** Fluid vs packet truth at [n] background flows, no foreground (the
    aggregate comparison the test suite bounds). *)

val pp_agreement : Format.formatter -> agreement -> unit

(** {1 Benchmark} *)

type bench_row = {
  b_n : int;
  b_wall_s : float;
  b_ticks : int;
  b_goodput_bps : float;
}

val bench : ?duration:float -> ?ns:int list -> unit -> bench_row list
(** Wall-time of [run] across a background-population ladder (default
    10^3..10^6, 60 simulated seconds each). *)

val pp_bench : Format.formatter -> bench_row list -> unit

val write_bench_json : path:string -> bench_row list -> unit
(** One-line JSON report (BENCH_meanfield.json shape): [max_background]
    plus per-row wall time, ticks and steady-state goodput. *)
