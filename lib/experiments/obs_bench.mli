(** Overhead accounting for the telemetry layer ([BENCH_obs.json]).

    Runs the harness workload with telemetry off and on, measures the
    per-call cost of the disabled recording guard in a tight loop, and
    reports:

    - [enabled_overhead_percent]: measured wall-time cost of recording
      metrics plus the journal, relative to the telemetry-off run;
    - [disabled_overhead_percent]: estimated cost of the instrumentation
      left in hot paths when telemetry is off — the number of guarded
      calls times the measured per-call guard cost, relative to the
      telemetry-off wall time. This is the figure the <2% acceptance
      bound applies to;
    - [labeled_overhead_ratio]: per-call cost of an enabled increment
      through a cached labeled-family child, relative to a plain
      counter. Bound: ≤2x — labels must not tax the hot path;
    - [span_ns] / [span_alloc_words]: per-call wall cost and minor-heap
      allocation of an enabled profiler span (path push/pop, two clock
      reads, a [Gc.quick_stat] pair, locked accumulate). Bounds: ≤10 µs
      and ≤512 minor words per span — generous, since spans wrap phases
      rather than instructions, but loud on order-of-magnitude
      regressions.

    Leaves both the metrics registry and the sink disabled and reset. *)

type report = {
  seed : int;
  duration : float;  (** simulated seconds per workload run *)
  repeats : int;
  disabled_seconds : float;  (** best-of-[repeats] wall, telemetry off *)
  enabled_seconds : float;  (** wall with metrics + sink enabled *)
  enabled_overhead_percent : float;
  instrumentation_calls : int;  (** guarded recording calls in one run *)
  events_recorded : int;
  events_dropped : int;
  noop_ns : float;  (** one disabled recording call, nanoseconds *)
  disabled_overhead_percent : float;
  counter_ns : float;  (** one enabled plain-counter incr, nanoseconds *)
  labeled_ns : float;  (** same through a cached family child *)
  labeled_overhead_ratio : float;  (** [labeled_ns / counter_ns]; bound 2x *)
  span_ns : float;  (** one enabled span enter/exit, nanoseconds *)
  span_alloc_words : float;  (** minor words allocated per enabled span *)
}

val run : ?seed:int -> ?duration:float -> ?repeats:int -> unit -> report
(** Defaults: seed 7, 60 simulated seconds, best of 3. *)

val to_json : report -> string
val write_json : path:string -> report -> unit
val pp_report : Format.formatter -> report -> unit
