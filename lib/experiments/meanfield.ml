open Utc_net
module Engine = Utc_sim.Engine
module Metrics = Utc_obs.Metrics
module Sink = Utc_obs.Sink

type topo =
  | Single
  | Parking_lot

let topo_to_string = function
  | Single -> "single"
  | Parking_lot -> "parking_lot"

let topo_of_string = function
  | "single" -> Ok Single
  | "parking_lot" | "parking-lot" -> Ok Parking_lot
  | s -> Error (Printf.sprintf "unknown topology %S (expected single or parking_lot)" s)

type config = {
  seed : int;
  duration : float;
  background : int;
  classes : int;
  foreground : int;
  topo : topo;
  dt : float;
  sample_every : float;
}

let default_config =
  {
    seed = 1;
    duration = 120.0;
    background = 5_000;
    classes = 8;
    foreground = 2;
    topo = Single;
    dt = 0.01;
    sample_every = 1.0;
  }

(* The §4 bottleneck scaled with the population, as in
   [Versus.many_senders]: per-flow fair share stays 12 kbps and per-flow
   buffer quota 4 packets, so what changes with N is contention dynamics,
   not starvation. The parking lot chains a second, tighter bottleneck
   behind a 20 ms hop. *)
let shared_path ~topo ~total_flows =
  let n = max total_flows 1 in
  let rate = 12_000.0 *. float_of_int n in
  let cap = 48_000 * n in
  match topo with
  | Single -> Topology.series [ Topology.buffer ~capacity_bits:cap; Topology.throughput ~rate_bps:rate ]
  | Parking_lot ->
    Topology.series
      [
        Topology.buffer ~capacity_bits:cap;
        Topology.throughput ~rate_bps:rate;
        Topology.delay ~seconds:0.02;
        Topology.buffer ~capacity_bits:(cap * 3 / 4);
        Topology.throughput ~rate_bps:(0.8 *. rate);
      ]

let buffer_capacity ~topo ~total_flows =
  let n = max total_flows 1 in
  let cap = 48_000 * n in
  match topo with
  | Single -> cap
  | Parking_lot -> cap + (cap * 3 / 4)

(* Foreground flows share the versus.flow.* families (register-or-retrieve
   by name); the population gets its own meanfield.agg.* entries. Lazy so
   the meanfield.* names only enter the registry — and other experiments'
   metric snapshots — once a mean-field run actually happens. *)
let sent_cf = lazy (Metrics.counter_family "versus.flow.sent")
let delivered_cf = lazy (Metrics.counter_family "versus.flow.delivered")
let queue_drops_cf = lazy (Metrics.counter_family "versus.flow.queue_drops")
let throughput_gf = lazy (Metrics.gauge_family "versus.flow.throughput_bps")
let agg_queue_gf = lazy (Metrics.gauge_family "meanfield.agg.queue_bits")
let agg_goodput_g = lazy (Metrics.gauge "meanfield.agg.goodput_bps")
let agg_offered_g = lazy (Metrics.gauge "meanfield.agg.offered_pps")
let agg_window_g = lazy (Metrics.gauge "meanfield.agg.window_pkts")
let agg_loss_g = lazy (Metrics.gauge "meanfield.agg.loss_prob")
let agg_rtt_g = lazy (Metrics.gauge "meanfield.agg.rtt")
let agg_samples_c = lazy (Metrics.counter "meanfield.agg.samples")

(* Samplers read post-tick aggregate state and run after every network
   event of their instant. *)
let sample_prio = 100

type fg_row = {
  fg_sender : int;
  fg_flow : string;
  fg_sent : int;
  fg_delivered : int;
  fg_throughput_bps : float;
  fg_mean_rtt : float;
}

type summary = {
  m_topo : topo;
  m_background : int;
  m_classes : int;
  m_foreground : int;
  m_duration : float;
  final : Fluid.agg;
  bg_goodput_bps : float;
  bg_queue_bits : float;
  fg_rows : fg_row list;
  ticks : int;
}

let run ?(config = default_config) () =
  if config.background < 0 then invalid_arg "Meanfield.run: background must be non-negative";
  if config.foreground < 0 || config.foreground > 256 then
    invalid_arg "Meanfield.run: foreground must be in 0..256";
  if config.duration <= 0.0 then invalid_arg "Meanfield.run: duration must be positive";
  if config.sample_every <= 0.0 then invalid_arg "Meanfield.run: sample_every must be positive";
  let n = config.foreground in
  let fg_flows = List.init n (fun i -> Flow.Aux i) in
  let total = config.background + n in
  let truth =
    {
      Topology.sources = List.map Topology.endpoint (Flow.Cross :: fg_flows);
      shared = shared_path ~topo:config.topo ~total_flows:total;
    }
  in
  let engine = Engine.create ~seed:config.seed () in
  let compiled = Compiled.compile_exn truth in
  let sent_cs =
    Array.init n (fun i -> Metrics.labeled (Lazy.force sent_cf) [ ("flow", Flow.to_string (Flow.Aux i)) ])
  in
  let delivered_cs =
    Array.init n (fun i -> Metrics.labeled (Lazy.force delivered_cf) [ ("flow", Flow.to_string (Flow.Aux i)) ])
  in
  let delivered_bits = Array.make (max n 1) 0 in
  let drop_counts = Array.make (max n 1) 0 in
  let senders = Array.make (max n 1) None in
  let deliver flow pkt =
    match (flow : Flow.t) with
    | Aux i when i >= 0 && i < n ->
      delivered_bits.(i) <- delivered_bits.(i) + pkt.Packet.bits;
      Metrics.incr delivered_cs.(i);
      (match senders.(i) with
      | Some tcp -> Utc_tcp.Sender.on_delivery tcp pkt
      | None -> ())
    | Primary | Cross | Aux _ -> ()
  in
  let on_drop ~node_id ~reason pkt =
    (match pkt.Packet.flow with
    | Flow.Aux i when i >= 0 && i < n -> drop_counts.(i) <- drop_counts.(i) + 1
    | Flow.Primary | Flow.Cross | Flow.Aux _ -> ());
    if Sink.enabled () then
      Sink.record
        ~flow:(Flow.to_string pkt.Packet.flow)
        ~at:(Engine.now engine)
        (Utc_obs.Event.Packet_drop
           {
             node = string_of_int node_id;
             reason = Format.asprintf "%a" Fluid.pp_drop_reason reason;
             seq = pkt.Packet.seq;
           })
  in
  let background = Fluid.population ~flow:Flow.Cross ~flows:config.background ~classes:config.classes () in
  let fluid =
    Fluid.build
      ~config:{ Fluid.default_config with dt = config.dt }
      engine compiled
      (Fluid.callbacks ~deliver ~on_drop ())
      ~background
  in
  List.iteri
    (fun i flow ->
      let tcp =
        Utc_tcp.Sender.create engine
          { Utc_tcp.Sender.default_config with flow }
          ~inject:(fun pkt ->
            Metrics.incr sent_cs.(i);
            Fluid.inject fluid flow pkt)
      in
      senders.(i) <- Some tcp)
    fg_flows;
  Array.iter (function Some tcp -> Utc_tcp.Sender.start tcp | None -> ()) senders;
  (* Steady-state accounting over the second half of the run, plus the
     periodic aggregate sampler feeding metrics and journal marks. *)
  let half_at = config.duration /. 2.0 in
  let half_delivered = ref 0.0 in
  let queue_acc = ref 0.0 in
  let queue_samples = ref 0 in
  ignore
    (Engine.schedule ~prio:sample_prio engine ~at:half_at (fun () ->
         half_delivered := (Fluid.sample fluid).Fluid.delivered_bits));
  let total_queue_bits (agg : Fluid.agg) =
    List.fold_left
      (fun acc (id, q) -> acc +. q +. float_of_int (Fluid.fg_queue_bits fluid ~node_id:id))
      0.0 agg.Fluid.queue_bits
  in
  let rec sample_at k =
    let at = float_of_int k *. config.sample_every in
    if at <= config.duration then
      ignore
        (Engine.schedule ~prio:sample_prio engine ~at (fun () ->
             let agg = Fluid.sample fluid in
             Metrics.set_gauge (Lazy.force agg_goodput_g) agg.Fluid.goodput_bps;
             Metrics.set_gauge (Lazy.force agg_offered_g) agg.Fluid.offered_pps;
             Metrics.set_gauge (Lazy.force agg_window_g) agg.Fluid.mean_window_pkts;
             Metrics.set_gauge (Lazy.force agg_loss_g) agg.Fluid.loss_prob;
             Metrics.set_gauge (Lazy.force agg_rtt_g) agg.Fluid.rtt;
             List.iter
               (fun (id, q) ->
                 Metrics.set_gauge
                   (Metrics.labeled (Lazy.force agg_queue_gf) [ ("station", string_of_int id) ])
                   (q +. float_of_int (Fluid.fg_queue_bits fluid ~node_id:id)))
               agg.Fluid.queue_bits;
             Metrics.incr (Lazy.force agg_samples_c);
             if at >= half_at then begin
               queue_acc := !queue_acc +. total_queue_bits agg;
               incr queue_samples
             end;
             if Sink.enabled () then begin
               Sink.record ~at (Utc_obs.Event.Mark { name = "meanfield.goodput_bps"; value = agg.Fluid.goodput_bps });
               Sink.record ~at (Utc_obs.Event.Mark { name = "meanfield.loss_prob"; value = agg.Fluid.loss_prob });
               Sink.record ~at (Utc_obs.Event.Mark { name = "meanfield.rtt"; value = agg.Fluid.rtt })
             end;
             sample_at (k + 1)))
  in
  sample_at 1;
  (* Root span for the same reason as [Harness.run]'s: mean-field runs
     may execute as pooled jobs, so the subtree re-roots here. *)
  Metrics.span ~name:"meanfield.run" ~root:true
    ~now:(fun () -> Engine.now engine)
    (fun () -> Engine.run ~until:config.duration engine);
  let final = Fluid.sample fluid in
  let bg_goodput_bps =
    if config.background = 0 then 0.0
    else (final.Fluid.delivered_bits -. !half_delivered) /. (config.duration -. half_at)
  in
  let bg_queue_bits =
    if !queue_samples = 0 then 0.0 else !queue_acc /. float_of_int !queue_samples
  in
  let fg_rows =
    List.mapi
      (fun i flow ->
        let tcp = Option.get senders.(i) in
        let fl = Flow.to_string flow in
        let labels = [ ("flow", fl) ] in
        let throughput = float_of_int delivered_bits.(i) /. config.duration in
        Metrics.set_gauge (Metrics.labeled (Lazy.force throughput_gf) labels) throughput;
        Metrics.add (Metrics.labeled (Lazy.force queue_drops_cf) labels) drop_counts.(i);
        let rtts = List.map snd (Utc_tcp.Sender.rtt_trace tcp) in
        let mean_rtt =
          match Utc_stats.Summary.of_list rtts with
          | Some s -> s.Utc_stats.Summary.mean
          | None -> 0.0
        in
        {
          fg_sender = i;
          fg_flow = fl;
          fg_sent = Utc_tcp.Sender.sent_count tcp;
          fg_delivered = Utc_tcp.Sender.delivered tcp;
          fg_throughput_bps = throughput;
          fg_mean_rtt = mean_rtt;
        })
      fg_flows
  in
  {
    m_topo = config.topo;
    m_background = config.background;
    m_classes = config.classes;
    m_foreground = config.foreground;
    m_duration = config.duration;
    final;
    bg_goodput_bps;
    bg_queue_bits;
    fg_rows;
    ticks = Fluid.steps fluid;
  }

let pp_summary ppf s =
  Format.fprintf ppf "meanfield: topo=%s background=%d classes=%d foreground=%d duration=%gs@,"
    (topo_to_string s.m_topo) s.m_background s.m_classes s.m_foreground s.m_duration;
  Format.fprintf ppf "  integrator: %d ticks@," s.ticks;
  Format.fprintf ppf
    "  aggregate(final): goodput=%.4g bps offered=%.4g pps window=%.4g pkts loss=%.4g rtt=%.4g s@,"
    s.final.Fluid.goodput_bps s.final.Fluid.offered_pps s.final.Fluid.mean_window_pkts
    s.final.Fluid.loss_prob s.final.Fluid.rtt;
  Format.fprintf ppf "  steady-state: goodput=%.4g bps queue=%.4g bits@," s.bg_goodput_bps
    s.bg_queue_bits;
  List.iter
    (fun r ->
      Format.fprintf ppf "  fg %s: sent=%d delivered=%d throughput=%.4g bps mean_rtt=%.4g s@,"
        r.fg_flow r.fg_sent r.fg_delivered r.fg_throughput_bps r.fg_mean_rtt)
    s.fg_rows

(* --- packet-level truth --- *)

type truth = {
  t_n : int;
  t_goodput_bps : float;
  t_queue_bits : float;
}

(* Time-weighted mean of a step trace (oldest first, each value holding
   until the next point) over [since, until]. *)
let mean_of_trace trace ~since ~until =
  if until <= since then 0.0
  else begin
    let area = ref 0.0 in
    let last_t = ref 0.0 and last_v = ref 0 in
    let segment t0 t1 v =
      let lo = Float.max t0 since and hi = Float.min t1 until in
      if hi > lo then area := !area +. ((hi -. lo) *. float_of_int v)
    in
    List.iter
      (fun (t, v) ->
        segment !last_t t !last_v;
        last_t := t;
        last_v := v)
      trace;
    segment !last_t until !last_v;
    !area /. (until -. since)
  end

let packet_truth ?(seed = 1) ?(duration = 120.0) ?(foreground = 0) ~topo ~background () =
  if background < 0 then invalid_arg "Meanfield.packet_truth: background must be non-negative";
  if foreground < 0 || background + foreground > 256 then
    invalid_arg "Meanfield.packet_truth: background + foreground must be in 0..256";
  let total = background + foreground in
  let flows = List.init total (fun i -> Flow.Aux i) in
  let truth_topo =
    {
      Topology.sources = List.map Topology.endpoint flows;
      shared = shared_path ~topo ~total_flows:total;
    }
  in
  let engine = Engine.create ~seed () in
  let receiver = Utc_core.Receiver.create engine in
  let compiled = Compiled.compile_exn truth_topo in
  let runtime = Utc_elements.Runtime.build engine compiled (Utc_core.Receiver.callbacks receiver) in
  let tcps =
    List.map
      (fun flow ->
        let tcp =
          Utc_tcp.Sender.create engine
            { Utc_tcp.Sender.default_config with flow }
            ~inject:(fun pkt -> Utc_elements.Runtime.inject runtime flow pkt)
        in
        Utc_core.Receiver.subscribe receiver flow (fun _ pkt -> Utc_tcp.Sender.on_delivery tcp pkt);
        tcp)
      flows
  in
  List.iter Utc_tcp.Sender.start tcps;
  Engine.run ~until:duration engine;
  let since = duration /. 2.0 in
  (* Background flows are Aux foreground..foreground+background-1, so the
     foreground flows (if any) occupy the same Aux 0.. ids as in [run]. *)
  let bg_flows = List.filteri (fun i _ -> i >= foreground) flows in
  let goodput =
    List.fold_left
      (fun acc flow -> acc +. Utc_core.Receiver.throughput receiver flow ~since ~until:duration)
      0.0 bg_flows
  in
  let queue =
    List.fold_left
      (fun acc id ->
        acc
        +. mean_of_trace (Utc_core.Receiver.queue_trace receiver ~node_id:id) ~since ~until:duration)
      0.0
      (Compiled.station_ids compiled)
  in
  { t_n = background; t_goodput_bps = goodput; t_queue_bits = queue }

type agreement = {
  a_topo : topo;
  a_n : int;
  fluid_goodput_bps : float;
  packet_goodput_bps : float;
  goodput_rel_err : float;
  fluid_queue_bits : float;
  packet_queue_bits : float;
  queue_frac_of_buffer : float;
}

let validate ?(seed = 1) ?(duration = 120.0) ~topo ~n () =
  let fluid_summary =
    run
      ~config:{ default_config with seed; duration; background = n; foreground = 0; topo }
      ()
  in
  let packet = packet_truth ~seed ~duration ~topo ~background:n () in
  let fluid_goodput = fluid_summary.bg_goodput_bps in
  let goodput_rel_err =
    if packet.t_goodput_bps > 0.0 then
      Float.abs (fluid_goodput -. packet.t_goodput_bps) /. packet.t_goodput_bps
    else Float.abs fluid_goodput
  in
  let cap = float_of_int (buffer_capacity ~topo ~total_flows:n) in
  {
    a_topo = topo;
    a_n = n;
    fluid_goodput_bps = fluid_goodput;
    packet_goodput_bps = packet.t_goodput_bps;
    goodput_rel_err;
    fluid_queue_bits = fluid_summary.bg_queue_bits;
    packet_queue_bits = packet.t_queue_bits;
    queue_frac_of_buffer = Float.abs (fluid_summary.bg_queue_bits -. packet.t_queue_bits) /. cap;
  }

let pp_agreement ppf a =
  Format.fprintf ppf
    "%s N=%d: goodput fluid=%.4g packet=%.4g (rel err %.3f) queue fluid=%.4g packet=%.4g (%.3f \
     of buffer)"
    (topo_to_string a.a_topo) a.a_n a.fluid_goodput_bps a.packet_goodput_bps a.goodput_rel_err
    a.fluid_queue_bits a.packet_queue_bits a.queue_frac_of_buffer

(* --- benchmark --- *)

type bench_row = {
  b_n : int;
  b_wall_s : float;
  b_ticks : int;
  b_goodput_bps : float;
}

let bench ?(duration = 60.0) ?(ns = [ 1_000; 10_000; 100_000; 1_000_000 ]) () =
  List.map
    (fun n ->
      let started = Utc_sim.Wallclock.now () in
      let s =
        run
          ~config:
            { default_config with background = n; foreground = 2; duration; sample_every = 10.0 }
          ()
      in
      {
        b_n = n;
        b_wall_s = Utc_sim.Wallclock.elapsed_since started;
        b_ticks = s.ticks;
        b_goodput_bps = s.bg_goodput_bps;
      })
    ns

let bench_to_json rows =
  let row r =
    Printf.sprintf "{\"background\":%d,\"wall_seconds\":%.6f,\"ticks\":%d,\"goodput_bps\":%.6g}"
      r.b_n r.b_wall_s r.b_ticks r.b_goodput_bps
  in
  let max_n = List.fold_left (fun acc r -> max acc r.b_n) 0 rows in
  Printf.sprintf "{\"benchmark\":\"meanfield\",\"max_background\":%d,\"rows\":[%s]}\n" max_n
    (String.concat "," (List.map row rows))

let write_bench_json ~path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (bench_to_json rows))

let pp_bench ppf rows =
  Format.fprintf ppf "%12s %12s %10s %14s@." "background" "wall (s)" "ticks" "goodput (bps)";
  List.iter
    (fun r -> Format.fprintf ppf "%12d %12.3f %10d %14.4g@." r.b_n r.b_wall_s r.b_ticks r.b_goodput_bps)
    rows
