open Utc_net
module Belief = Utc_inference.Belief
module Mstate = Utc_model.Mstate
module Forward = Utc_model.Forward
module Planner = Utc_core.Planner

(* Expected bottleneck occupancy (packets) under the belief: queue plus
   in-service bits of the first station of each hypothesis, weighted. *)
let expected_occupancy belief =
  let hyps = Belief.support belief in
  List.fold_left
    (fun acc (h : _ Belief.hypothesis) ->
      let compiled = Forward.compiled_of h.Belief.prepared in
      match Compiled.station_ids compiled with
      | station :: _ ->
        let bits = Mstate.station_bits h.Belief.state station in
        acc +. (exp h.Belief.logw *. (float_of_int bits /. float_of_int Packet.default_bits))
      | [] -> acc)
    0.0 hyps

(* Belief-mean service time of one packet at the bottleneck. *)
let expected_service belief =
  let hyps = Belief.support belief in
  let rate =
    List.fold_left
      (fun acc (h : _ Belief.hypothesis) ->
        let compiled = Forward.compiled_of h.Belief.prepared in
        let station_rate =
          match Compiled.station_ids compiled with
          | station :: _ -> (
            match Compiled.node compiled station with
            | Compiled.Station { rate_bps; _ } -> rate_bps
            | Compiled.Delay _ | Compiled.Loss _ | Compiled.Jitter _ | Compiled.Gate _
            | Compiled.Either _ | Compiled.Divert _ | Compiled.Multipath _ ->
              0.0)
          | [] -> 0.0
        in
        acc +. (exp h.Belief.logw *. station_rate))
      0.0 hyps
  in
  if rate > 0.0 then float_of_int Packet.default_bits /. rate else 1.0

let decider ~threshold belief ~now:_ ~pending ~make_packet:_ =
  let occupancy = expected_occupancy belief +. float_of_int (List.length pending) in
  if occupancy +. 1.0 <= float_of_int threshold then (Planner.Send_now, [])
  else (Planner.Sleep (expected_service belief), [])

type comparison = {
  threshold : int;
  planner_sent : int;
  policy_sent : int;
  planner_goodput_bps : float;
  policy_goodput_bps : float;
  planner_cross_drops : int;
  policy_cross_drops : int;
  planner_wall : float;
  policy_wall : float;
}

let run_sender ?decide ~seed ~duration ~alpha () =
  let wall_start = Utc_sim.Wallclock.now () in
  let belief =
    Belief.create
      (Utc_inference.Priors.seeds ~config:Forward.default_config
         (Utc_inference.Priors.paper_prior ()))
  in
  let engine = Utc_sim.Engine.create ~seed () in
  let receiver = Utc_core.Receiver.create engine in
  let runtime =
    Utc_elements.Runtime.build engine
      (Compiled.compile_exn Utc_inference.Priors.paper_truth_topology)
      (Utc_core.Receiver.callbacks receiver)
  in
  let utility = Utc_utility.Utility.make ~alpha ~cross_discounted:true () in
  let planner = { Planner.default_config with utility; delays = Harness.paper_delays } in
  let isender =
    Utc_core.Isender.create ?decide engine
      { Utc_core.Isender.default_config with planner }
      ~belief
      ~inject:(fun pkt -> Utc_elements.Runtime.inject runtime Flow.Primary pkt)
  in
  Utc_core.Receiver.subscribe receiver Flow.Primary (fun _ pkt ->
      Utc_core.Isender.on_ack isender pkt);
  Utc_core.Isender.start isender;
  Utc_sim.Engine.run ~until:duration engine;
  let cross_drops =
    List.length
      (List.filter
         (fun (_, _, r, pkt) ->
           r = Utc_elements.Runtime.Tail_drop && Flow.equal pkt.Packet.flow Flow.Cross)
         (Utc_core.Receiver.drops receiver))
  in
  ( Utc_core.Isender.sent_count isender,
    Utc_core.Receiver.throughput receiver Flow.Primary ~since:0.0 ~until:duration,
    cross_drops,
    Utc_sim.Wallclock.elapsed_since wall_start )

let compare_on_fig3 ?(seed = 1) ?(duration = 200.0) ?(alpha = 1.0) () =
  let solution =
    Utc_pomdp.Sender_mdp.solve { Utc_pomdp.Sender_mdp.default with Utc_pomdp.Sender_mdp.alpha }
  in
  let threshold = Utc_pomdp.Sender_mdp.send_threshold solution in
  let planner_sent, planner_goodput_bps, planner_cross_drops, planner_wall =
    run_sender ~seed ~duration ~alpha ()
  in
  let policy_sent, policy_goodput_bps, policy_cross_drops, policy_wall =
    run_sender ~decide:(decider ~threshold) ~seed ~duration ~alpha ()
  in
  {
    threshold;
    planner_sent;
    policy_sent;
    planner_goodput_bps;
    policy_goodput_bps;
    planner_cross_drops;
    policy_cross_drops;
    planner_wall;
    policy_wall;
  }

let pp_report ppf c =
  Format.fprintf ppf
    "Precomputed policy vs online planner on the S4 network (same belief filter)@.@.";
  Format.fprintf ppf "offline policy: send while expected occupancy < %d@.@." c.threshold;
  Format.fprintf ppf "%-18s %10s %14s %12s %10s@." "sender" "sent" "goodput(bps)" "cross-drops"
    "wall(s)";
  Format.fprintf ppf "%-18s %10d %14.0f %12d %10.2f@." "online planner" c.planner_sent
    c.planner_goodput_bps c.planner_cross_drops c.planner_wall;
  Format.fprintf ppf "%-18s %10d %14.0f %12d %10.2f@." "offline policy" c.policy_sent
    c.policy_goodput_bps c.policy_cross_drops c.policy_wall;
  Format.fprintf ppf
    "@.(S3.3: \"the sender's algorithm need not be executed in real time\" -@.";
  Format.fprintf ppf
    " the table-driven sender prices nothing at decision time and should land@.";
  Format.fprintf ppf " in the same regime as the planner)@."
