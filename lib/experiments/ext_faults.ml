open Utc_net
module Tb = Utc_sim.Timebase
module Belief = Utc_inference.Belief
module Faults = Utc_elements.Faults
module Recovery = Utc_core.Recovery
module Isender = Utc_core.Isender

type params = { link_bps : float }

type variant =
  | No_recovery
  | With_recovery
  | Oracle

let variant_name = function
  | No_recovery -> "no-recovery"
  | With_recovery -> "recovery"
  | Oracle -> "oracle"

type run = {
  variant : variant;
  sent : int;
  delivered : int;
  post_throughput : float;
  utility : float;
  rejected_updates : int;
  max_streak : int;
  reseeds : int;
  stale_acks : int;
  dropped_acks : int;
  rehealed_at : float option;
}

type scenario = {
  name : string;
  description : string;
  onset : float;
  reseed_after : int;
  runs : run list;
}

(* One sender into a tail-drop buffer drained by a rate-limited link,
   with a last-mile loss element (rate 0 unless a fault overrides it).
   The hypothesis family varies only the link rate — every injected
   fault is outside the family, i.e. genuinely unmodeled. *)
let topology p =
  {
    Topology.sources = [ Topology.endpoint Flow.Primary ];
    shared =
      Topology.series
        [
          Topology.buffer ~capacity_bits:96_000;
          Topology.throughput ~rate_bps:p.link_bps;
          Topology.loss ~rate:0.0;
        ];
  }

let seeds prior =
  let forward_config = Utc_model.Forward.default_config in
  List.map
    (fun (p, w) ->
      let compiled = Compiled.compile_exn (topology p) in
      let prepared = Utc_model.Forward.prepare forward_config compiled in
      let state = Utc_model.Mstate.initial ~epoch:1.0 compiled in
      (p, w, prepared, state))
    prior

let truth = { link_bps = 12_000.0 }

let prior =
  Utc_inference.Priors.uniform
    (List.map
       (fun link_bps -> { link_bps })
       (Utc_inference.Priors.grid_float ~lo:10_000.0 ~hi:16_000.0 ~step:1_000.0))

(* Recovery's re-widened prior: geometric multiples of the MAP link rate,
   wide enough to recapture a large unmodeled shift in either direction. *)
let widen_factors = [ 0.25; 0.5; 1.0; 2.0; 3.0; 4.0; 8.0 ]

let reseed_widened ~now belief =
  let map, _ = Belief.map_estimate belief in
  let widened =
    Utc_inference.Priors.uniform
      (List.map (fun f -> { link_bps = map.link_bps *. f }) widen_factors)
  in
  Belief.reseed belief ~seeds:(seeds widened) ~now ()

let reseed_oracle truth_after ~now belief =
  Belief.reseed belief ~seeds:(seeds [ (truth_after, 1.0) ]) ~now ()

let recovery_config = Recovery.default_config

let run_variant ~seed ~duration ~onset ~schedule ~truth_after variant =
  let belief = Belief.create (seeds prior) in
  let engine = Utc_sim.Engine.create ~seed () in
  let receiver = Utc_core.Receiver.create engine in
  let compiled_truth = Compiled.compile_exn (topology truth) in
  let runtime =
    Utc_elements.Runtime.build engine compiled_truth (Utc_core.Receiver.callbacks receiver)
  in
  let faults = Faults.arm engine runtime ~seed:(seed + 7919) schedule in
  let config =
    match variant with
    | No_recovery -> Isender.default_config
    | With_recovery | Oracle -> { Isender.default_config with recovery = Some recovery_config }
  in
  let reseed =
    match variant with
    | No_recovery -> None
    | With_recovery -> Some reseed_widened
    | Oracle -> Some (reseed_oracle truth_after)
  in
  let isender =
    Isender.create ?reseed engine config ~belief ~inject:(fun pkt ->
        Utc_elements.Runtime.inject runtime Flow.Primary pkt)
  in
  Utc_core.Receiver.subscribe receiver Flow.Primary
    (Faults.wrap_ack faults (fun _ pkt -> Isender.on_ack isender pkt));
  Isender.start isender;
  Utc_sim.Engine.run ~until:duration engine;
  let deliveries = Utc_core.Receiver.deliveries receiver Flow.Primary in
  let utility =
    (* Realized discounted throughput: each delivered bit discounted by
       the time it spent in flight (kappa = 60 s, the default). *)
    List.fold_left
      (fun acc (t, pkt) ->
        acc +. (float_of_int pkt.Packet.bits *. exp (-.(t -. pkt.Packet.sent_at) /. 60.0)))
      0.0 deliveries
  in
  let rehealed_at =
    List.fold_left
      (fun acc (t, from_, to_) ->
        match acc with
        | Some _ -> acc
        | None ->
          if
            Tb.( >=. ) t onset
            && Recovery.phase_equal from_ Recovery.Probing
            && Recovery.phase_equal to_ Recovery.Healthy
          then Some t
          else None)
      None (Isender.transitions isender)
  in
  {
    variant;
    sent = Isender.sent_count isender;
    delivered = Utc_core.Receiver.delivered_count receiver Flow.Primary;
    post_throughput =
      Utc_core.Receiver.throughput receiver Flow.Primary ~since:onset ~until:duration;
    utility;
    rejected_updates = Isender.rejected_updates isender;
    max_streak = Isender.max_rejection_streak isender;
    reseeds = Isender.reseeds isender;
    stale_acks = Isender.stale_acks isender;
    dropped_acks = Faults.dropped_acks faults;
    rehealed_at;
  }

let run_scenario ~seed ~duration ~onset ~name ~description ~schedule ~truth_after () =
  if duration <= onset then invalid_arg "Ext_faults: duration must exceed the fault onset";
  let runs =
    List.map
      (run_variant ~seed ~duration ~onset ~schedule ~truth_after)
      [ No_recovery; With_recovery; Oracle ]
  in
  { name; description; onset; reseed_after = recovery_config.Recovery.reseed_after; runs }

let onset = 40.0

let run_rate_flap ?(seed = 1) ?(duration = 120.0) () =
  run_scenario ~seed ~duration ~onset ~name:"rate-flap"
    ~description:"link rate x3 (12k -> 36k bps) from t=40 onward; outside the prior grid"
    ~schedule:
      [
        {
          Faults.from_ = onset;
          until = duration +. 1.0;
          spec = Faults.Rate_flap { station = None; factor = 3.0 };
        };
      ]
    ~truth_after:{ link_bps = 36_000.0 } ()

let run_loss_burst ?(seed = 1) ?(duration = 120.0) () =
  run_scenario ~seed ~duration ~onset ~name:"loss-burst"
    ~description:"last-mile loss 0 -> 0.3 over [40, 70); the family models no loss"
    ~schedule:
      [
        {
          Faults.from_ = onset;
          until = 70.0;
          spec = Faults.Loss_burst { node = None; rate = 0.3 };
        };
      ]
    ~truth_after:truth ()

let run_ack_delay ?(seed = 1) ?(duration = 120.0) () =
  run_scenario ~seed ~duration ~onset ~name:"ack-delay"
    ~description:"every ACK deferred 0.5 s over [40, 70); the model assumes an instant return path"
    ~schedule:
      [ { Faults.from_ = onset; until = 70.0; spec = Faults.Ack_delay { seconds = 0.5 } } ]
    ~truth_after:truth ()

let run_ack_drop ?(seed = 1) ?(duration = 120.0) () =
  run_scenario ~seed ~duration ~onset ~name:"ack-drop"
    ~description:"each ACK eaten with p=0.5 over [40, 70); the return path is assumed lossless"
    ~schedule:[ { Faults.from_ = onset; until = 70.0; spec = Faults.Ack_drop { p = 0.5 } } ]
    ~truth_after:truth ()

let run_all ?(seed = 1) ?(duration = 120.0) () =
  [
    run_rate_flap ~seed ~duration ();
    run_loss_burst ~seed ~duration ();
    run_ack_delay ~seed ~duration ();
    run_ack_drop ~seed ~duration ();
  ]

let find_run scenario variant =
  List.find
    (fun r ->
      match (r.variant, variant) with
      | No_recovery, No_recovery | With_recovery, With_recovery | Oracle, Oracle -> true
      | (No_recovery | With_recovery | Oracle), _ -> false)
    scenario.runs

(* The PR's acceptance bar, checked on the rate flap: the recovering
   sender's rejection streak stays bounded by the ladder's [reseed_after]
   and it strictly out-delivers the non-recovering baseline after the
   fault. *)
let rate_flap_acceptance scenario =
  let baseline = find_run scenario No_recovery in
  let recovering = find_run scenario With_recovery in
  let streak_ok = recovering.max_streak <= scenario.reseed_after in
  let throughput_ok = recovering.post_throughput > baseline.post_throughput in
  (streak_ok, throughput_ok)

let pp_run ppf r =
  Format.fprintf ppf "  %-12s %6d %7d %11.1f %11.1f %6d %7d %5d %6d %6d %9s@."
    (variant_name r.variant) r.sent r.delivered r.post_throughput r.utility r.rejected_updates
    r.max_streak r.reseeds r.stale_acks r.dropped_acks
    (match r.rehealed_at with
    | Some t -> Printf.sprintf "%.1f" t
    | None -> "-")

let pp_scenario ppf s =
  Format.fprintf ppf "%s: %s@." s.name s.description;
  Format.fprintf ppf "  %-12s %6s %7s %11s %11s %6s %7s %5s %6s %6s %9s@." "variant" "sent"
    "deliv" "post-bps" "utility" "rejup" "streak" "rsd" "stale" "adrop" "heal-t";
  List.iter (pp_run ppf) s.runs;
  Format.fprintf ppf "@."

let pp_report ppf scenarios =
  Format.fprintf ppf
    "Fault robustness (ext-faults): unmodeled mid-run perturbations, fault onset t=%.0f s@.@."
    onset;
  Format.fprintf ppf
    "  post-bps = delivered throughput after onset; streak = longest run of rejected@.";
  Format.fprintf ppf
    "  updates; rsd = posterior reseeds; heal-t = ladder back to Healthy (sim time)@.@.";
  List.iter (pp_scenario ppf) scenarios;
  match List.find_opt (fun s -> String.equal s.name "rate-flap") scenarios with
  | None -> ()
  | Some s ->
    let streak_ok, throughput_ok = rate_flap_acceptance s in
    let baseline = find_run s No_recovery in
    let recovering = find_run s With_recovery in
    Format.fprintf ppf "rate-flap acceptance: streak %d <= %d (%s); post-fault %.1f > %.1f bps (%s)@."
      recovering.max_streak s.reseed_after
      (if streak_ok then "PASS" else "FAIL")
      recovering.post_throughput baseline.post_throughput
      (if throughput_ok then "PASS" else "FAIL")
