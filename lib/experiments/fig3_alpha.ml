type run = {
  alpha : float;
  result : Harness.result;
}

let paper_alphas = [ 0.9; 1.0; 2.5; 5.0 ]

let run_one ?(seed = 1) ?(duration = 300.0) ~alpha () =
  let config = { Harness.default with alpha; seed; duration } in
  { alpha; result = Harness.run config }

let run_all ?seed ?duration ?(alphas = paper_alphas) () =
  List.map (fun alpha -> run_one ?seed ?duration ~alpha ()) alphas

let sent_series run =
  List.map (fun (t, seq) -> (t, float_of_int seq)) run.result.Harness.sent

type rates = {
  r_alpha : float;
  cross_on_rate : float;
  cross_off_rate : float;
  overflow_drops_caused : int;
  total_sent : int;
}

let rates run =
  let result = run.result in
  let duration = result.Harness.config.Harness.duration in
  let on_window = Float.min duration 100.0 in
  let late_on = if duration > 200.0 then duration -. 200.0 else 0.0 in
  let on_sends =
    Harness.sends_in result ~since:0.0 ~until:on_window
    + Harness.sends_in result ~since:200.0 ~until:duration
  in
  let off_sends = Harness.sends_in result ~since:100.0 ~until:(Float.min duration 200.0) in
  let off_window = Float.max 0.0 (Float.min duration 200.0 -. 100.0) in
  {
    r_alpha = run.alpha;
    cross_on_rate =
      (if on_window +. late_on > 0.0 then float_of_int on_sends /. (on_window +. late_on)
       else 0.0);
    cross_off_rate = (if off_window > 0.0 then float_of_int off_sends /. off_window else 0.0);
    overflow_drops_caused = result.Harness.tail_drops_cross;
    total_sent = result.Harness.sent_count;
  }

let pp_report ppf runs =
  Format.fprintf ppf "Figure 3: sequence number vs time, varying priority to cross traffic@.";
  Format.fprintf ppf
    "truth: c=12000 bps, buffer=96000 bits, loss=0.2, pinger=0.7c, square wave 100 s@.@.";
  Format.fprintf ppf "%8s %12s %12s %14s %10s@." "alpha" "on-rate/s" "off-rate/s" "cross-drops"
    "sent";
  List.iter
    (fun run ->
      let r = rates run in
      Format.fprintf ppf "%8.2f %12.3f %12.3f %14d %10d@." r.r_alpha r.cross_on_rate
        r.cross_off_rate r.overflow_drops_caused r.total_sent)
    runs;
  Format.fprintf ppf "@.(paper: off-rate = link speed 1/s for every alpha; on-rate decreasing@.";
  Format.fprintf ppf " in alpha, 0.3/s at alpha=1; no cross drops caused when alpha >= 1)@.@.";
  let series =
    List.map
      (fun run ->
        {
          Utc_stats.Ascii_plot.label = Printf.sprintf "a=%g" run.alpha;
          points = sent_series run;
        })
      runs
  in
  Format.fprintf ppf "%s@."
    (Utc_stats.Ascii_plot.render ~x_label:"time (s)" ~y_label:"sequence number" series)
