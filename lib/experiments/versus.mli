(** Extension experiments the paper's §3.5 marks as open questions.

    - ISender vs TCP sharing one bottleneck: the ISender's model does not
      describe a TCP peer (its cross-traffic model is an intermittent
      isochronous pinger), so this probes behavior under model
      misspecification — rejected updates trigger unconditioned
      advancing.
    - TCP under AQM: Reno through tail-drop, RED and CoDel on the
      bufferbloat path of Figure 1, measuring delay vs throughput — the
      in-network counterpoint the paper's introduction discusses. *)

type share = {
  label : string;
  primary_bps : float;
  other_bps : float;
  jain : float;
  drops : int;
  rejected_updates : int;  (** Model-misspecification fallbacks. *)
}

val isender_vs_tcp : ?seed:int -> ?duration:float -> ?alpha:float -> unit -> share
(** ISender (Primary) and a Reno download (Aux 0) into the §4 bottleneck
    (no stochastic loss, no pinger in the ground truth; the ISender keeps
    its usual model family). *)

val isender_vs_isender : ?seed:int -> ?duration:float -> ?alpha:float -> unit -> share
(** Two ISenders with the paper's model family sharing the §4 bottleneck,
    each explaining the other as an intermittent pinger. Reports the
    throughput split and how often each belief rejected every
    configuration. *)

type flow_row = {
  sender : int;
  flow : string;  (** [Flow.to_string], e.g. ["aux3"] — the family label *)
  f_sent : int;
  f_delivered : int;
  f_throughput_bps : float;
  f_mean_rtt : float;
  f_queue_drops : int;
}

type many = {
  senders : int;
  many_duration : float;
  rows : flow_row list;  (** one per sender, in sender order *)
  many_jain : float;
  total_drops : int;
}

val many_senders : ?seed:int -> ?duration:float -> senders:int -> unit -> many
(** [senders] Reno senders (flows [Aux 0 .. Aux n-1]) sharing one
    bottleneck whose rate and buffer scale with the population, so the
    per-sender fair share stays the §4 12 kbps. Per-flow accounting is
    published through the [versus.flow.*] labeled metric families
    (sent/delivered/queue-drop counters, goodput gauge, RTT histogram;
    one [flow="auxN"] child per sender) and every packet event in the
    journal carries its flow. Raises [Invalid_argument] unless
    [1 <= senders <= 256]. *)

type aqm_row = {
  discipline : string;
  throughput_bps : float;
  mean_rtt : float;
  p95_rtt : float;
  aqm_drops : int;
}

val tcp_under_aqm : ?seed:int -> ?duration:float -> unit -> aqm_row list
(** Reno through tail-drop / RED / CoDel at the Figure 1 bottleneck. *)

val pp_share : Format.formatter -> share -> unit
val pp_many : Format.formatter -> many -> unit
val pp_aqm : Format.formatter -> aqm_row list -> unit
